// Extension bench: sensitivity to localization error (paper Section I:
// "localization protocols incur extra costs and may have large location
// errors" is a core motivation for GDV needing none).
//
// MDT-greedy and NADV are fed physical coordinates corrupted by Gaussian
// noise of increasing sigma; GDV on VPoD uses no location information, so
// its curve is flat by construction -- plotted alongside as the reference.
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int pairs = full ? 0 : 400;
  const int periods = full ? 20 : 10;
  const radio::Topology topo = paper_topology(200, 6001);
  std::printf("Localization-error sensitivity | N=%d, ETX metric%s\n", topo.size(),
              full ? " [full]" : " [quick]");

  // GDV's (location-free) reference level.
  eval::VpodRunner runner(topo, /*use_etx=*/true, paper_vpod(3));
  runner.run_to_period(periods);
  eval::EvalOptions opts;
  opts.use_etx = true;
  opts.pair_samples = pairs;
  const auto gdv = eval::eval_gdv(runner.snapshot(), topo, opts);

  const std::vector<double> sigmas{0.0, 2.0, 5.0, 10.0, 15.0};  // meters
  std::vector<double> xs;
  Series mdt_tx{"MDT (noisy loc)", {}}, nadv_tx{"NADV (noisy loc)", {}},
      nadv_sr{"NADV success", {}}, mdt_sr{"MDT success", {}},
      gdv_tx{"GDV (no loc)", {}};

  for (double sigma : sigmas) {
    xs.push_back(sigma);
    Rng rng(777 + static_cast<std::uint64_t>(sigma * 10));
    std::vector<Vec> noisy = topo.positions;
    for (Vec& p : noisy)
      for (int c = 0; c < p.dim(); ++c) p[c] += rng.normal(0.0, sigma);

    const auto view = routing::centralized_mdt(noisy, topo.etx);
    std::vector<int> ids;
    for (int i = 0; i < topo.size(); ++i) ids.push_back(i);
    const auto sampled = eval::sample_pairs(ids, pairs, 5);
    const auto mdt = eval::evaluate_router(
        [&](int s, int t) { return routing::route_mdt_greedy(view, s, t); }, topo.etx, topo.hops,
        true, sampled);
    const routing::PlanarGraph planar(noisy, topo.hops);
    const auto nadv = eval::evaluate_router(
        [&](int s, int t) { return routing::route_nadv(noisy, topo.etx, planar, s, t); },
        topo.etx, topo.hops, true, sampled);
    mdt_tx.values.push_back(mdt.transmissions);
    mdt_sr.values.push_back(mdt.success_rate);
    nadv_tx.values.push_back(nadv.transmissions);
    nadv_sr.values.push_back(nadv.success_rate);
    gdv_tx.values.push_back(gdv.transmissions);
  }

  print_table("transmissions per delivery vs location error sigma (m)", "sigma", xs,
              {mdt_tx, nadv_tx, gdv_tx});
  print_table("success rate vs location error sigma (m)", "sigma", xs, {mdt_sr, nadv_sr});
  std::printf("\nexpected shape: location-based protocols degrade with noise (NADV's\n"
              "success collapses; MDT survives via DT guarantees but its stretch grows);\n"
              "GDV is flat -- it never used locations.\n");
  return 0;
}
