// Chaos soak: sustained Poisson churn + partition/heal cycles under live
// supervision. Unlike fig17_churn (one flash-crowd event, paper methodology)
// this drives the robustness stack end to end: the continuous churn workload
// generator (sim/churn.hpp) feeds the fault injector, the phi-accrual
// failure detector evicts dead DT neighbors, incarnation/tombstone
// reconciliation blocks resurrection, and the convergence watchdog
// (eval/watchdog.hpp) audits every adjustment period, measures
// time-to-recover and repairs stuck nodes.
//
//   soak_churn [--full] [--n=<nodes>] [--periods=<count>] [--rate=<frac>]
//
// --rate is the expected fraction of alive nodes leaving (and dead nodes
// rejoining) per adjustment period; default 0.05. The run exits non-zero if
// the watchdog records any audit failure, so it doubles as a long-horizon
// smoke test. Set GDVR_METRICS_OUT to dump the full registry.
#include "common.hpp"
#include "eval/invariants.hpp"
#include "eval/watchdog.hpp"
#include "sim/churn.hpp"

using namespace gdvr;
using namespace gdvr::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  int n = full ? 150 : 80;
  int periods = full ? 40 : 20;
  double rate = 0.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) n = std::atoi(argv[i] + 4);
    if (std::strncmp(argv[i], "--periods=", 10) == 0) periods = std::atoi(argv[i] + 10);
    if (std::strncmp(argv[i], "--rate=", 7) == 0) rate = std::atof(argv[i] + 7);
  }
  const std::uint64_t seed = 4242;
  const radio::Topology topo = paper_topology(n, seed);

  vpod::VpodConfig vc = paper_vpod(3);
  vc.mdt.fd.enabled = true;  // phi-accrual eviction + heartbeats + tombstones
  eval::VpodRunner runner(topo, /*use_etx=*/false, vc, {}, seed);
  runner.enable_reliable_sync();
  const double period_len = vc.join_period_s + vc.adjust_period_s;

  // Reach steady state (3 adjustment periods) before supervision begins, so
  // the watchdog's baseline audits see the healthy protocol.
  const int warmup = 3;
  runner.run_to_period(warmup);

  eval::WatchdogConfig wc;
  wc.period_s = period_len;
  wc.audit.pair_samples = full ? 400 : 200;
  wc.audit.seed = seed;
  eval::ConvergenceWatchdog dog(runner, wc);
  const sim::Time t_end = runner.simulator().now() + periods * period_len;
  dog.start(t_end);

  // Churn starts one period into supervision (the first audits are baseline).
  sim::ChurnConfig cc;
  cc.t_begin = runner.simulator().now() + period_len;
  cc.t_end = t_end - period_len;  // quiet tail: the last audits see recovery
  cc.leave_rate_hz = rate * static_cast<double>(n) / period_len;
  cc.join_rate_hz = cc.leave_rate_hz;
  cc.flash_crowds = 1;
  cc.partition_cycles = 1;
  cc.partition_s = period_len * 0.5;
  const sim::FaultSchedule churn = sim::continuous_churn(cc, seed + 7, n);
  std::printf("soak: n=%d periods=%d churn %s\n", n, periods, churn.describe().c_str());
  runner.faults().install(churn);
  runner.simulator().run_until(t_end + 1.0);

  std::printf("\n== soak results ==\n");
  std::printf("audits                 %zu\n", dog.history().size());
  std::printf("baseline success       %.4f\n", dog.baseline_success());
  std::printf("degradation episodes   %zu\n", dog.recovery_times().size());
  std::printf("worst recovery         %.1f s (%.2f periods)\n", dog.worst_recovery_s(),
              dog.worst_recovery_s() / period_len);
  std::printf("watchdog resyncs       %llu\n",
              static_cast<unsigned long long>(dog.resyncs_triggered()));
  std::printf("audit failures         %llu\n",
              static_cast<unsigned long long>(dog.audit_failures()));
  const auto& fd = runner.protocol().overlay().fd_stats();
  std::printf("fd heartbeats sent     %llu\n", static_cast<unsigned long long>(fd.heartbeats_sent));
  std::printf("fd evictions           %llu\n", static_cast<unsigned long long>(fd.evictions));
  std::printf("fd tombstones          %llu\n",
              static_cast<unsigned long long>(fd.tombstones_created));
  std::printf("fd gossip suppressed   %llu\n",
              static_cast<unsigned long long>(fd.gossip_suppressed));
  std::printf("fd stale inc dropped   %llu\n",
              static_cast<unsigned long long>(fd.stale_incarnation_dropped));

  const char* path = std::getenv("GDVR_METRICS_OUT");
  if (path != nullptr && path[0] != '\0') {
    obs::Registry reg;
    runner.export_metrics(reg);
    dog.export_metrics(reg);
    std::ofstream os(path);
    if (os) reg.write_json(os);
  }

  if (dog.audit_failures() > 0) {
    std::printf("\nFAIL: %llu audit failure(s)\n",
                static_cast<unsigned long long>(dog.audit_failures()));
    return 1;
  }
  std::printf("\nOK: delivery recovered after every churn event\n");
  return 0;
}
