// Figure 9: normalized singular values of the N x N routing-cost matrix vs
// dimension index (1..15), for N = 200 / 600 / 1000, hop-count and ETX
// metrics. Shows that the first ~3 singular values dominate, i.e. routing
// costs embed well in a low-dimensional Euclidean space.
#include "analysis/embedding.hpp"
#include "analysis/svd.hpp"
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

namespace {

std::vector<double> averaged_singular_values(int n, bool use_etx, int networks, int k) {
  std::vector<double> avg(static_cast<std::size_t>(k), 0.0);
  for (int net = 0; net < networks; ++net) {
    const radio::Topology topo = paper_topology(n, 900 + static_cast<std::uint64_t>(net) * 31 +
                                                       (use_etx ? 7 : 0));
    const analysis::Matrix costs = analysis::cost_matrix(topo.metric_graph(use_etx));
    // Replace unreachable entries (none expected: largest component) by 0.
    const auto sv = analysis::normalized(analysis::top_singular_values(costs, k, 40, 17));
    for (int i = 0; i < k && i < static_cast<int>(sv.size()); ++i)
      avg[static_cast<std::size_t>(i)] += sv[static_cast<std::size_t>(i)];
  }
  for (double& v : avg) v /= networks;
  return avg;
}

void run_metric(bool use_etx, const std::vector<int>& sizes, int networks, int k) {
  std::vector<double> xs;
  for (int i = 1; i <= k; ++i) xs.push_back(i);
  std::vector<Series> series;
  for (int n : sizes) {
    Series s{"N = " + std::to_string(n), averaged_singular_values(n, use_etx, networks, k)};
    series.push_back(std::move(s));
  }
  print_table(use_etx ? "Fig 9(b): normalized singular values (ETX)"
                      : "Fig 9(a): normalized singular values (hop count)",
              "dimension", xs, series);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int networks = full ? 20 : 3;
  const std::vector<int> sizes = full ? std::vector<int>{200, 600, 1000}
                                      : std::vector<int>{200, 600};
  std::printf("Figure 9 | %d networks per point%s\n", networks, full ? " [full]" : " [quick]");
  run_metric(false, sizes, networks, 15);
  run_metric(true, sizes, networks, 15);
  std::printf("\nexpected shape: first ~3 singular values dominate; the 3rd grows with N.\n");
  return 0;
}
