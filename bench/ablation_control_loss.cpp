// Ablation: lossy control plane.
//
// The paper (like most routing-protocol evaluations) delivers control
// messages reliably and folds link lossiness into the routing metric only.
// Here every VPoD/MDT protocol message is additionally dropped with
// probability 1 - PRR of its link -- the same loss data packets face. The
// protocols' retry and soft-state machinery must absorb it: convergence
// slows and messages increase, but converged routing quality should hold.
#include "common.hpp"

using namespace gdvr;
using namespace gdvr::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const int periods = full ? 20 : 10;
  const int pairs = full ? 0 : 300;
  const radio::Topology topo = paper_topology(200, 8181);
  std::printf("Control-plane loss ablation | N=%d, ETX metric, 3D%s\n", topo.size(),
              full ? " [full]" : " [quick]");

  std::vector<double> xs;
  std::vector<Series> tx_series, msg_series;
  for (bool lossy : {false, true}) {
    eval::VpodRunner runner(topo, /*use_etx=*/true, paper_vpod(3));
    if (lossy) runner.enable_control_loss();
    const char* name = lossy ? "lossy control plane" : "reliable control plane";
    Series tx{name, {}}, ms{name, {}};
    eval::EvalOptions opts;
    opts.use_etx = true;
    opts.pair_samples = pairs;
    for (int k = 0; k <= periods; ++k) {
      runner.run_to_period(k);
      if (xs.size() < static_cast<std::size_t>(periods) + 1 && !lossy) xs.push_back(k);
      tx.values.push_back(eval::eval_gdv(runner.snapshot(), topo, opts).transmissions);
      ms.values.push_back(runner.messages_per_node_since_mark());
    }
    if (lossy) {
      std::printf("lossy run: %llu of %llu transmissions dropped (%.1f%%)\n",
                  static_cast<unsigned long long>(runner.net().messages_lost()),
                  static_cast<unsigned long long>(runner.net().total_messages_sent()),
                  100.0 * runner.net().messages_lost() / runner.net().total_messages_sent());
    }
    tx_series.push_back(std::move(tx));
    msg_series.push_back(std::move(ms));
  }
  print_table("GDV transmissions per delivery vs period", "period", xs, tx_series);
  print_table("control messages per node per period", "period", xs, msg_series);
  std::printf("\nexpected shape: with loss, early convergence is slower and message\n"
              "counts higher (retries), but converged routing quality matches.\n");
  return 0;
}
