// Scenario-parameterized routing quality: delivery rate and stretch for each
// workload generator x routing protocol, reported through the standard
// metric-registry export path. This is the numbers-producing companion of
// tests/scenario_matrix_test.cpp: the matrix pins invariants, this bench
// prints the table EXPERIMENTS.md records (and, with GDVR_METRICS_OUT set,
// dumps every cell as "scenario.<name>.<proto>.{delivery_rate,stretch,...}"
// gauges to JSON/CSV).
//
//   build/bench/scenario_eval             # quick: small instances
//   build/bench/scenario_eval --full      # paper-scale instances
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "common.hpp"
#include "routing/routers.hpp"
#include "scenario/scenario.hpp"

namespace gdvr::bench {
namespace {

struct ProtoDef {
  const char* name;
  eval::RouteFn (*make)(const routing::MdtView&, const routing::PlanarGraph&,
                        const radio::Topology&);
};

eval::RouteFn make_gdv(const routing::MdtView& view, const routing::PlanarGraph&,
                       const radio::Topology&) {
  return [&view](int s, int t) { return routing::route_gdv(view, s, t); };
}

eval::RouteFn make_mdt(const routing::MdtView& view, const routing::PlanarGraph&,
                       const radio::Topology&) {
  return [&view](int s, int t) { return routing::route_mdt_greedy(view, s, t); };
}

eval::RouteFn make_gpsr(const routing::MdtView&, const routing::PlanarGraph& planar,
                        const radio::Topology& topo) {
  return [&planar, &topo](int s, int t) {
    return routing::route_gpsr(topo.positions, topo.hops, planar, s, t);
  };
}

constexpr ProtoDef kProtos[] = {
    {"gdv", make_gdv}, {"mdt_greedy", make_mdt}, {"gpsr", make_gpsr}};

// RoutingStats defaults success_rate to 1.0, so accumulate in plain zeroed
// fields instead of a RoutingStats.
struct CellAccum {
  double delivery = 0.0;
  double stretch = 0.0;
  int pairs = 0;
  int rounds = 0;
};

void run_scenario(scenario::Scenario& sc, int pair_samples, obs::Registry& reg,
                  std::vector<Series>& delivery, std::vector<Series>& stretch) {
  CellAccum cells[std::size(kProtos)];
  for (int k = 0; k < sc.rounds(); ++k) {
    const scenario::Round round = sc.round(k);
    const radio::Topology& topo = round.topo;
    const routing::MdtView view = routing::centralized_mdt(topo.positions, topo.etx);
    const routing::PlanarGraph planar(topo.positions, topo.hops);
    std::vector<int> ids(static_cast<std::size_t>(topo.size()));
    for (int i = 0; i < topo.size(); ++i) ids[static_cast<std::size_t>(i)] = i;
    const auto pairs = eval::sample_pairs(ids, pair_samples, 1000u + static_cast<std::uint64_t>(k));
    for (std::size_t p = 0; p < std::size(kProtos); ++p) {
      const eval::RouteFn fn = kProtos[p].make(view, planar, topo);
      const eval::RoutingStats st =
          eval::evaluate_router(fn, topo.etx, topo.hops, /*use_etx=*/false, pairs);
      cells[p].delivery += st.success_rate;
      cells[p].stretch += st.stretch;
      cells[p].pairs += st.pairs_evaluated;
      ++cells[p].rounds;
    }
  }
  for (std::size_t p = 0; p < std::size(kProtos); ++p) {
    eval::RoutingStats avg;
    avg.pairs_evaluated = cells[p].pairs;
    if (cells[p].rounds > 0) {
      avg.success_rate = cells[p].delivery / cells[p].rounds;
      avg.stretch = cells[p].stretch / cells[p].rounds;
    }
    eval::export_routing_stats(reg, "scenario." + sc.name() + "." + kProtos[p].name, avg);
    delivery[p].values.push_back(avg.success_rate);
    stretch[p].values.push_back(avg.stretch);
  }
}

}  // namespace
}  // namespace gdvr::bench

int main(int argc, char** argv) {
  using namespace gdvr::bench;
  const bool full = full_mode(argc, argv);
  const int pair_samples = full ? 400 : 100;

  std::vector<std::unique_ptr<gdvr::scenario::Scenario>> scenarios;
  scenarios.push_back(gdvr::scenario::unit_square_scenario(full ? 200 : 80, 7, full ? 3 : 1));
  {
    gdvr::scenario::GeoWanConfig gw;
    gw.n = full ? 220 : 110;
    gw.seed = 11;
    scenarios.push_back(gdvr::scenario::geo_wan_scenario(gw, full ? 3 : 1));
  }
  {
    gdvr::scenario::MobilityScenarioConfig mc;
    mc.mobility.n = full ? 160 : 70;
    mc.mobility.seed = 3;
    mc.rounds = full ? 6 : 3;
    scenarios.push_back(gdvr::scenario::mobility_scenario(mc));
  }
  {
    gdvr::scenario::MobilityScenarioConfig mc;
    mc.mobility.model = gdvr::scenario::MobilityConfig::Model::kGroup;
    mc.mobility.n = full ? 160 : 70;
    mc.mobility.seed = 5;
    mc.rounds = full ? 6 : 3;
    scenarios.push_back(gdvr::scenario::mobility_scenario(mc));
  }
  {
    gdvr::scenario::FlashCrowdScenarioConfig fc;
    fc.n = full ? 240 : 120;
    fc.seed = 9;
    scenarios.push_back(gdvr::scenario::flash_crowd_scenario(fc));
  }

  gdvr::obs::Registry reg;
  std::vector<Series> delivery, stretch;
  for (const auto& p : kProtos) {
    delivery.push_back({p.name, {}});
    stretch.push_back({p.name, {}});
  }
  std::vector<double> xs;
  std::printf("scenarios:");
  for (auto& sc : scenarios) {
    std::printf(" %s", sc->name().c_str());
    xs.push_back(static_cast<double>(xs.size()));
    run_scenario(*sc, pair_samples, reg, delivery, stretch);
  }
  std::printf("\n(x column is the scenario index in that order)\n");
  print_table("delivery rate per scenario x protocol", "scenario#", xs, delivery);
  print_table("hop stretch per scenario x protocol (delivered pairs)", "scenario#", xs, stretch);

  if (const char* path = std::getenv("GDVR_METRICS_OUT"); path != nullptr && path[0] != '\0') {
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "warning: cannot open GDVR_METRICS_OUT=%s\n", path);
    } else {
      const std::string target = path;
      const bool csv =
          target.size() >= 4 && target.compare(target.size() - 4, 4, ".csv") == 0;
      if (csv)
        reg.write_csv(os);
      else
        reg.write_json(os);
    }
  }
  return 0;
}
