// Shared infrastructure for the figure-reproduction benches.
//
// Every bench binary prints the series of one paper figure. By default the
// benches run in "quick" mode (fewer repetitions, sampled source-destination
// pairs) so the whole `for b in build/bench/*; do $b; done` loop finishes on
// a laptop; set GDV_FULL=1 (or pass --full) for paper-scale repetitions.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "eval/protocol_runner.hpp"
#include "eval/routing_eval.hpp"
#include "obs/metrics.hpp"
#include "radio/topology.hpp"
#include "vivaldi/vivaldi.hpp"
#include "vpod/vpod.hpp"

namespace gdvr::bench {

inline bool full_mode(int argc = 0, char** argv = nullptr) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) return true;
  const char* env = std::getenv("GDV_FULL");
  return env != nullptr && env[0] == '1';
}

// The paper's standard workload: N nodes, area scaled so the average number
// of physical neighbors stays at 14.5 (200 nodes <-> 100 m x 100 m).
inline radio::Topology paper_topology(int n, std::uint64_t seed, int num_obstacles = 0) {
  radio::TopologyConfig tc;
  tc.n = n;
  tc.seed = seed;
  const double scale = std::sqrt(static_cast<double>(n) / 200.0);
  tc.width_m = 100.0 * scale;
  tc.height_m = 100.0 * scale;
  tc.num_obstacles = num_obstacles;
  tc.obstacle_size_m = 10.0;
  tc.target_avg_degree = 14.5;
  return radio::make_random_topology(tc);
}

inline vpod::VpodConfig paper_vpod(int dim) {
  vpod::VpodConfig vc;
  vc.dim = dim;
  return vc;  // Ta = 20 s, cc = 0.1, ce = 0.25, adaptive timeout: paper defaults
}

// One GDV-on-VPoD time series: routing stats per sampled adjustment period.
struct PeriodPoint {
  int period = 0;
  eval::RoutingStats gdv;
  double storage = 0.0;
  double msgs_per_node = 0.0;  // control messages per node in this period window
};

// When GDVR_METRICS_OUT is set, dumps the runner's metric registry to that
// path: "<base>.json" (or any other extension) gets JSON, "<base>.csv" CSV.
// Appends when several series run in one bench process would collide: each
// export goes to "<path>" on the first call and "<path>.<k>" afterwards.
inline void export_runner_metrics(const eval::VpodRunner& runner) {
  const char* path = std::getenv("GDVR_METRICS_OUT");
  if (path == nullptr || path[0] == '\0') return;
  static int call = 0;
  std::string target = path;
  // Appended piecewise: `"." + std::to_string(call)` trips GCC 12's
  // -Wrestrict false positive (PR105329) under -O2 with -Werror.
  if (call > 0) {
    target += '.';
    target += std::to_string(call);
  }
  ++call;
  obs::Registry reg;
  runner.export_metrics(reg);
  std::ofstream os(target);
  if (!os) {
    std::fprintf(stderr, "warning: cannot open GDVR_METRICS_OUT=%s\n", target.c_str());
    return;
  }
  const bool csv = target.size() >= 4 && target.compare(target.size() - 4, 4, ".csv") == 0;
  if (csv)
    reg.write_csv(os);
  else
    reg.write_json(os);
}

inline std::vector<PeriodPoint> run_vpod_series(const radio::Topology& topo, bool use_etx,
                                                const vpod::VpodConfig& vc, int periods,
                                                int pair_samples, int sample_every = 1,
                                                std::uint64_t eval_seed = 1) {
  eval::VpodRunner runner(topo, use_etx, vc);
  eval::EvalOptions opts;
  opts.use_etx = use_etx;
  opts.pair_samples = pair_samples;
  opts.seed = eval_seed;
  std::vector<PeriodPoint> out;
  int last_marked = 0;
  for (int k = 0; k <= periods; ++k) {
    runner.run_to_period(k);
    if (k % sample_every != 0 && k != periods) continue;
    PeriodPoint p;
    p.period = k;
    p.gdv = eval::eval_gdv(runner.snapshot(), topo, opts);
    p.storage = runner.avg_storage();
    const int window = k - last_marked;
    p.msgs_per_node = runner.messages_per_node_since_mark() / std::max(window, 1);
    last_marked = k;
    out.push_back(p);
  }
  export_runner_metrics(runner);
  return out;
}

// ---------------------------------------------------------------------------
// Plain-text series printing (one column per curve, like the figure's lines).

struct Series {
  std::string name;
  std::vector<double> values;
};

inline void print_table(const char* title, const char* x_label,
                        const std::vector<double>& xs, const std::vector<Series>& series) {
  std::printf("\n== %s ==\n", title);
  std::printf("%-14s", x_label);
  for (const Series& s : series) std::printf(" %22s", s.name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-14g", xs[i]);
    for (const Series& s : series) {
      if (i < s.values.size())
        std::printf(" %22.3f", s.values[i]);
      else
        std::printf(" %22s", "-");
    }
    std::printf("\n");
  }
}

}  // namespace gdvr::bench
